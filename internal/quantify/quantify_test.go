package quantify

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

func randDiscretes(rng *rand.Rand, n, k int, spready bool) []*uncertain.Discrete {
	pts := make([]*uncertain.Discrete, n)
	for i := range pts {
		c := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		for j := range locs {
			locs[j] = c.Add(geom.Pt(rng.NormFloat64()*1.5, rng.NormFloat64()*1.5))
			if spready {
				w[j] = math.Pow(10, rng.Float64()*2) // spread up to ~100
			} else {
				w[j] = 0.5 + rng.Float64()
			}
		}
		d, err := uncertain.NewDiscrete(locs, w)
		if err != nil {
			panic(err)
		}
		pts[i] = d
	}
	return pts
}

// bruteExact is an independent O(N²·n)-ish reference implementation of
// Eq. (2), written differently from ExactAt on purpose.
func bruteExact(pts []*uncertain.Discrete, q geom.Point) []float64 {
	pi := make([]float64, len(pts))
	for i, p := range pts {
		for a, l := range p.Locs {
			d := q.Dist(l)
			prod := p.W[a]
			for j, pj := range pts {
				if j == i {
					continue
				}
				prod *= 1 - pj.DistCDF(q, d)
			}
			pi[i] += prod
		}
	}
	return pi
}

func TestExactMatchesIndependentReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pts := randDiscretes(rng, 1+rng.Intn(8), 1+rng.Intn(4), trial%2 == 0)
		for k := 0; k < 20; k++ {
			q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
			got := ExactAt(pts, q)
			want := bruteExact(pts, q)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("trial %d π_%d: %v vs %v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestExactSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		pts := randDiscretes(rng, 2+rng.Intn(10), 1+rng.Intn(5), false)
		q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
		pi := ExactAt(pts, q)
		if s := TotalMass(pi); math.Abs(s-1) > 1e-9 {
			t.Fatalf("Σπ = %v", s)
		}
		for _, v := range pi {
			if v < 0 || v > 1 {
				t.Fatalf("π out of range: %v", v)
			}
		}
	}
}

// Hand-computable instance: two points with one location each.
func TestExactTwoCertainPoints(t *testing.T) {
	p1 := uncertain.UniformDiscrete([]geom.Point{geom.Pt(0, 0)})
	p2 := uncertain.UniformDiscrete([]geom.Point{geom.Pt(10, 0)})
	pi := ExactAt([]*uncertain.Discrete{p1, p2}, geom.Pt(1, 0))
	if pi[0] != 1 || pi[1] != 0 {
		t.Fatalf("π = %v", pi)
	}
}

// Two coin-flip points: q closest to p11, then p21, then p12, then p22:
// π_1 = w11 + w12·(1−w21), π_2 = w21·(1−w11).
func TestExactHandComputed(t *testing.T) {
	p1, _ := uncertain.NewDiscrete(
		[]geom.Point{geom.Pt(1, 0), geom.Pt(5, 0)}, []float64{0.5, 0.5})
	p2, _ := uncertain.NewDiscrete(
		[]geom.Point{geom.Pt(3, 0), geom.Pt(7, 0)}, []float64{0.5, 0.5})
	pi := ExactAt([]*uncertain.Discrete{p1, p2}, geom.Pt(0, 0))
	if math.Abs(pi[0]-(0.5+0.5*0.5)) > 1e-12 {
		t.Fatalf("π_1 = %v want 0.75", pi[0])
	}
	if math.Abs(pi[1]-0.5*0.5) > 1e-12 {
		t.Fatalf("π_2 = %v want 0.25", pi[1])
	}
}

func TestMonteCarloConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randDiscretes(rng, 6, 3, false)
	upts := make([]uncertain.Point, len(pts))
	for i, p := range pts {
		upts[i] = p
	}
	eps := 0.05
	s := RoundsEmpirical(len(pts), eps, 0.01)
	mc, err := NewMonteCarlo(upts, s, MCOptions{Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 25; k++ {
		q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
		got := mc.QueryDense(q)
		want := ExactAt(pts, q)
		if d := MaxAbsDiff(got, want); d > eps {
			t.Fatalf("MC error %v > ε=%v at q=%v", d, eps, q)
		}
	}
}

func TestMonteCarloBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randDiscretes(rng, 5, 3, false)
	upts := make([]uncertain.Point, len(pts))
	for i, p := range pts {
		upts[i] = p
	}
	// Same seed → same instantiations → identical estimates.
	mc1, err := NewMonteCarlo(upts, 200, MCOptions{Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	mc2, err := NewMonteCarlo(upts, 200, MCOptions{Backend: MCDelaunay, Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
		a, b := mc1.QueryDense(q), mc2.QueryDense(q)
		if d := MaxAbsDiff(a, b); d > 1e-12 {
			t.Fatalf("backends disagree by %v at q=%v", d, q)
		}
	}
}

func TestMonteCarloContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Continuous points: exact reference via fine discretization.
	var upts []uncertain.Point
	var fine []*uncertain.Discrete
	for i := 0; i < 4; i++ {
		d := geom.DiskAt(rng.Float64()*10-5, rng.Float64()*10-5, 0.5+rng.Float64()*2)
		u := uncertain.UniformDisk{D: d}
		upts = append(upts, u)
		fine = append(fine, uncertain.Discretize(u, 4000, rng))
	}
	mc, err := NewMonteCarlo(upts, 4000, MCOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		q := geom.Pt(rng.Float64()*14-7, rng.Float64()*14-7)
		got := mc.QueryDense(q)
		want := ExactAt(fine, q)
		if d := MaxAbsDiff(got, want); d > 0.06 {
			t.Fatalf("continuous MC error %v at q=%v", d, q)
		}
	}
}

func TestRoundsFormulas(t *testing.T) {
	if Rounds(10, 3, 0.1, 0.1) <= RoundsEmpirical(10, 0.1, 0.1) {
		t.Fatal("uniform-guarantee rounds should exceed per-query rounds")
	}
	// 1/ε² scaling.
	a, b := RoundsEmpirical(10, 0.1, 0.1), RoundsEmpirical(10, 0.05, 0.1)
	if b < 3*a {
		t.Fatalf("halving ε should ~quadruple s: %d -> %d", a, b)
	}
}

func TestSpiralErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		pts := randDiscretes(rng, 8, 3, trial%2 == 1)
		sp, err := NewSpiral(pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.2, 0.05, 0.01} {
			for k := 0; k < 20; k++ {
				q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
				want := ExactAt(pts, q)
				probs, m := sp.Query(q, eps)
				got := make([]float64, len(pts))
				for _, pr := range probs {
					got[pr.I] = pr.P
				}
				for i := range want {
					// Lemma 4.6: ˆπ ≤ π ≤ ˆπ + ε.
					if got[i] > want[i]+1e-9 {
						t.Fatalf("ˆπ_%d=%v exceeds π=%v", i, got[i], want[i])
					}
					if want[i]-got[i] > eps+1e-9 {
						t.Fatalf("trial %d eps=%v: π_%d error %v (retrieved %d of %d)",
							trial, eps, i, want[i]-got[i], m, sp.N())
					}
				}
			}
		}
	}
}

func TestSpiralAdaptiveErrorAndEconomy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randDiscretes(rng, 10, 4, true) // spread weights
	sp, err := NewSpiral(pts)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.05
	totalFixed, totalAdaptive := 0, 0
	for k := 0; k < 40; k++ {
		q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
		want := ExactAt(pts, q)
		probs, m := sp.QueryAdaptive(q, eps)
		totalAdaptive += m
		_, mf := sp.Query(q, eps)
		totalFixed += mf
		got := make([]float64, len(pts))
		for _, pr := range probs {
			got[pr.I] = pr.P
		}
		for i := range want {
			if got[i] > want[i]+1e-9 || want[i]-got[i] > eps+1e-9 {
				t.Fatalf("adaptive error at q=%v i=%d: got %v want %v", q, i, got[i], want[i])
			}
		}
	}
	// The adaptive rule should not retrieve more than the fixed-m rule on
	// average (that is its purpose under spread weights).
	if totalAdaptive > totalFixed {
		t.Logf("note: adaptive retrieved %d vs fixed %d", totalAdaptive, totalFixed)
	}
}

func TestSpiralM(t *testing.T) {
	pts := randDiscretes(rand.New(rand.NewSource(10)), 5, 3, false)
	sp, _ := NewSpiral(pts)
	if sp.M(0.01) <= sp.M(0.1) {
		t.Fatal("m must grow as ε shrinks")
	}
	if sp.Rho() < 1 {
		t.Fatalf("rho = %v", sp.Rho())
	}
}

func TestVPrMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randDiscretes(rng, 4, 2, false)
	v, err := BuildVPr(pts, VPrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 300; k++ {
		q := geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
		got := v.Query(q)
		want := ExactAt(pts, q)
		if d := MaxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("V_Pr mismatch %v at q=%v", d, q)
		}
	}
	if v.DistinctCells() < 2 {
		t.Fatalf("suspiciously few distinct cells: %d", v.DistinctCells())
	}
	st := v.Stats()
	if st.V == 0 || st.F < 2 {
		t.Fatalf("degenerate stats %+v", st)
	}
}

func TestVPrRejectsHugeInstances(t *testing.T) {
	pts := randDiscretes(rand.New(rand.NewSource(12)), 40, 3, false)
	if _, err := BuildVPr(pts, VPrOptions{}); err == nil {
		t.Fatal("expected size rejection")
	}
}

func TestThresholdAndTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randDiscretes(rng, 8, 3, false)
	sp, _ := NewSpiral(pts)
	est := SpiralEstimator{S: sp}
	for k := 0; k < 30; k++ {
		q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
		tau := 0.25
		got := Threshold(est, q, tau)
		exact := ExactAt(pts, q)
		for _, pr := range got {
			if exact[pr.I] < tau/2 {
				t.Fatalf("threshold returned π=%v < τ/2", exact[pr.I])
			}
		}
		for i, p := range exact {
			if p >= 1.5*tau {
				found := false
				for _, pr := range got {
					if pr.I == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("threshold missed π_%d = %v ≥ 3τ/2", i, p)
				}
			}
		}
		top := TopK(est, q, 3, 0.01)
		if len(top) > 3 {
			t.Fatal("TopK returned too many")
		}
		for i := 1; i < len(top); i++ {
			if top[i].P > top[i-1].P {
				t.Fatal("TopK not sorted")
			}
		}
	}
}
