package quantify

import (
	"fmt"
	"math"

	"unn/internal/geom"
	"unn/internal/kdtree"
	"unn/internal/quadtree"
	"unn/internal/uncertain"
)

// locSource abstracts the incremental nearest-location retrieval backend
// of the spiral search: the kd-tree by default, or the quadtree
// branch-and-bound the paper's §4.3 Remark (ii) suggests (citing
// [Har11]). Benchmark E11 compares them.
type locSource interface {
	Len() int
	Enumerate(q geom.Point) locStream
}

// locStream yields (distance, owner index, weight) triples in
// non-decreasing distance order.
type locStream interface {
	Next() (d float64, owner int, w float64, ok bool)
}

type kdSource struct{ t *kdtree.Tree }

func (s kdSource) Len() int { return s.t.Len() }
func (s kdSource) Enumerate(q geom.Point) locStream {
	return kdStream{e: s.t.Enumerate(q)}
}

type kdStream struct{ e *kdtree.Enumerator }

func (s kdStream) Next() (float64, int, float64, bool) {
	nb, ok := s.e.Next()
	return nb.Dist, nb.Item.ID, nb.Item.W, ok
}

type qtSource struct{ t *quadtree.Tree }

func (s qtSource) Len() int { return s.t.Len() }
func (s qtSource) Enumerate(q geom.Point) locStream {
	return qtStream{e: s.t.Enumerate(q)}
}

type qtStream struct{ e *quadtree.Enumerator }

func (s qtStream) Next() (float64, int, float64, bool) {
	nb, ok := s.e.Next()
	return nb.Dist, nb.Item.ID, nb.Item.W, ok
}

// Spiral is the deterministic structure of §4.3 / Theorem 4.7: all N
// locations are preprocessed into an incremental nearest-neighbor
// structure; a query retrieves only the m(ρ,ε) locations nearest to q and
// evaluates Eq. (2) restricted to that prefix. Lemma 4.6 guarantees
// ˆπ_i(q) ≤ π_i(q) ≤ ˆπ_i(q) + ε.
//
// ρ is the spread of location probabilities (Eq. (9)): the ratio of the
// largest to the smallest w over all locations of all points.
type Spiral struct {
	pts  []*uncertain.Discrete
	locs locSource
	rho  float64
	kMax int
	n    int
}

// NewSpiral preprocesses the locations into a kd-tree (O(N log N)).
func NewSpiral(pts []*uncertain.Discrete) (*Spiral, error) {
	return newSpiral(pts, false)
}

// NewSpiralQuadtree is NewSpiral with the quadtree branch-and-bound
// retrieval backend of §4.3 Remark (ii) ([Har11]).
func NewSpiralQuadtree(pts []*uncertain.Discrete) (*Spiral, error) {
	return newSpiral(pts, true)
}

func newSpiral(pts []*uncertain.Discrete, useQuadtree bool) (*Spiral, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("quantify: empty point set")
	}
	kMax := 0
	for _, p := range pts {
		if p.K() > kMax {
			kMax = p.K()
		}
	}
	wLo, wHi := math.Inf(1), 0.0
	var kdItems []kdtree.Item
	var qtItems []quadtree.Item
	for i, p := range pts {
		for a, l := range p.Locs {
			w := p.W[a]
			wLo, wHi = math.Min(wLo, w), math.Max(wHi, w)
			if useQuadtree {
				qtItems = append(qtItems, quadtree.Item{P: l, W: w, ID: i})
			} else {
				kdItems = append(kdItems, kdtree.Item{P: l, W: w, ID: i})
			}
		}
	}
	var src locSource
	if useQuadtree {
		src = qtSource{t: quadtree.New(qtItems)}
	} else {
		src = kdSource{t: kdtree.New(kdItems)}
	}
	return &Spiral{
		pts:  pts,
		locs: src,
		rho:  wHi / wLo,
		kMax: kMax,
		n:    len(pts),
	}, nil
}

// Rho returns the spread of location probabilities.
func (s *Spiral) Rho() float64 { return s.rho }

// N returns the total number of stored locations.
func (s *Spiral) N() int { return s.locs.Len() }

// M returns m(ρ,ε) = ⌈ρk ln(ρ/ε)⌉ + k − 1, the retrieval budget of
// Theorem 4.7 (§1.3; the k−1 term covers P_i's own locations).
func (s *Spiral) M(eps float64) int {
	m := s.rho*float64(s.kMax)*math.Log(s.rho/eps) + float64(s.kMax) - 1
	if m < 1 {
		m = 1
	}
	return int(math.Ceil(m))
}

// Query returns ˆπ with additive error at most eps, retrieving the m(ρ,ε)
// nearest locations (plus any locations tied with the last one, so the
// retrieved set is distance-closed and Lemma 4.6 applies verbatim).
// Retrieved counts how many locations were actually pulled.
func (s *Spiral) Query(q geom.Point, eps float64) (probs []Prob, retrieved int) {
	return s.queryPrefix(q, s.M(eps), 0)
}

// QueryAdaptive stops retrieving as soon as the survival probability
// Π_j (1 − Ĝ_j(d)) drops to eps or below: for any unretrieved location p
// of point i, η(p;q) ≤ w(p)·Π_{j≠i}(1−Ĝ_j), and summing over P_i's tail
// bounds the truncation error of each π_i by the survival value — the
// adaptive sharpening of Lemma 4.6 (ablation E11 compares it with the
// fixed-m rule).
func (s *Spiral) QueryAdaptive(q geom.Point, eps float64) (probs []Prob, retrieved int) {
	return s.queryPrefix(q, s.locs.Len(), eps)
}

type swpEntry struct {
	d float64
	i int
	w float64
}

// peekStream adds single-item lookahead to a locStream.
type peekStream struct {
	s      locStream
	bd, bw float64
	bi     int
	has    bool
}

func (p *peekStream) Next() (float64, int, float64, bool) {
	if p.has {
		p.has = false
		return p.bd, p.bi, p.bw, true
	}
	return p.s.Next()
}

func (p *peekStream) Peek() (float64, bool) {
	if !p.has {
		d, i, w, ok := p.s.Next()
		if !ok {
			return 0, false
		}
		p.bd, p.bi, p.bw, p.has = d, i, w, true
	}
	return p.bd, true
}

func (s *Spiral) queryPrefix(q geom.Point, m int, survivalStop float64) ([]Prob, int) {
	e := &peekStream{s: s.locs.Enumerate(q)}
	var got []swpEntry
	factors := map[int]float64{} // 1 − Ĝ_j for touched owners
	survival := 1.0
	closeTies := func(last float64) {
		for {
			d, ok := e.Peek()
			if !ok || d > last {
				break
			}
			d2, i2, w2, _ := e.Next()
			got = append(got, swpEntry{d: d2, i: i2, w: w2})
		}
	}
	for {
		d, owner, w, ok := e.Next()
		if !ok {
			break
		}
		got = append(got, swpEntry{d: d, i: owner, w: w})
		// Maintain the survival product Π_j (1 − Ĝ_j).
		f, seen := factors[owner]
		if !seen {
			f = 1
		}
		nf := f - w
		if nf < 0 {
			nf = 0
		}
		factors[owner] = nf
		if f > 0 {
			if nf <= 0 {
				survival = 0
			} else {
				survival *= nf / f
			}
		}
		if len(got) >= m || survival <= survivalStop {
			// Pull any exact-distance ties so the prefix is closed.
			closeTies(d)
			break
		}
	}
	pi := etaSweep(got, s.n)
	var out []Prob
	for i, v := range pi {
		if v > 0 {
			out = append(out, Prob{I: i, P: v})
		}
	}
	return sortProbs(out), len(got)
}

// etaSweep evaluates Eq. (2)/(10)-(11) over a distance-sorted prefix of
// locations: ties are absorbed into the cdfs first (the ≤ of Eq. (2)),
// then each location's η is emitted against the updated cdfs.
func etaSweep(entries []swpEntry, n int) []float64 {
	pi := make([]float64, n)
	G := make([]float64, n)
	touched := make([]int, 0, 16)
	isTouched := make([]bool, n)
	for lo := 0; lo < len(entries); {
		hi := lo
		for hi < len(entries) && entries[hi].d == entries[lo].d {
			hi++
		}
		for t := lo; t < hi; t++ {
			en := entries[t]
			G[en.i] += en.w
			if !isTouched[en.i] {
				isTouched[en.i] = true
				touched = append(touched, en.i)
			}
		}
		for t := lo; t < hi; t++ {
			en := entries[t]
			prod := 1.0
			for _, j := range touched {
				if j == en.i {
					continue
				}
				f := 1 - G[j]
				if f <= 0 {
					prod = 0
					break
				}
				prod *= f
			}
			pi[en.i] += en.w * prod
		}
		lo = hi
	}
	return pi
}
