package quantify

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
	"unn/internal/uncertain"
)

// Spiral search over continuous points (open problem (iii) via the
// Theorem 4.5 reduction): the combined error must stay within the spiral
// ε plus the discretization error, checked against a fine reference.
func TestSpiralContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var cont []uncertain.Point
	for i := 0; i < 6; i++ {
		d := geom.DiskAt(rng.Float64()*15, rng.Float64()*15, 0.8+rng.Float64())
		cont = append(cont, uncertain.UniformDisk{D: d})
	}
	sp, disc, err := NewSpiralContinuous(cont, 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(disc) != len(cont) || disc[0].K() != 600 {
		t.Fatalf("discretization shape: %d pts, k=%d", len(disc), disc[0].K())
	}
	// Fine reference.
	ref := make([]*uncertain.Discrete, len(cont))
	for i, p := range cont {
		ref[i] = uncertain.Discretize(p, 4000, rng)
	}
	eps := 0.05
	for k := 0; k < 15; k++ {
		q := geom.Pt(rng.Float64()*15, rng.Float64()*15)
		probs, _ := sp.QueryAdaptive(q, eps)
		got := make([]float64, len(cont))
		for _, pr := range probs {
			got[pr.I] = pr.P
		}
		want := ExactAt(ref, q)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > eps+0.06 {
				t.Fatalf("q=%v i=%d: |%v - %v| = %v", q, i, got[i], want[i], d)
			}
		}
	}
}

func TestSpiralContinuousValidation(t *testing.T) {
	if _, _, err := NewSpiralContinuous(nil, 10, nil); err == nil {
		t.Fatal("empty accepted")
	}
	u := []uncertain.Point{uncertain.UniformDisk{D: geom.DiskAt(0, 0, 1)}}
	if _, _, err := NewSpiralContinuous(u, 0, nil); err == nil {
		t.Fatal("zero samples accepted")
	}
}

// Parallel MC must be deterministic in its own seed and agree with its
// serial self across worker schedules (same per-round generators).
func TestMonteCarloParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randDiscretes(rng, 10, 3, false)
	upts := make([]uncertain.Point, len(pts))
	for i, p := range pts {
		upts[i] = p
	}
	mk := func() *MonteCarlo {
		mc, err := NewMonteCarloParallel(upts, 300, MCOptions{Rng: rand.New(rand.NewSource(5))})
		if err != nil {
			t.Fatal(err)
		}
		return mc
	}
	a, b := mk(), mk()
	for k := 0; k < 50; k++ {
		q := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		if d := MaxAbsDiff(a.QueryDense(q), b.QueryDense(q)); d != 0 {
			t.Fatalf("parallel MC not deterministic: %v at %v", d, q)
		}
	}
	// And it must converge like the serial one.
	for k := 0; k < 20; k++ {
		q := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		if d := MaxAbsDiff(a.QueryDense(q), ExactAt(pts, q)); d > 0.12 {
			t.Fatalf("parallel MC error %v at %v", d, q)
		}
	}
}

func TestMonteCarloParallelDelaunayDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randDiscretes(rng, 5, 2, false)
	upts := make([]uncertain.Point, len(pts))
	for i, p := range pts {
		upts[i] = p
	}
	mc, err := NewMonteCarloParallel(upts, 50, MCOptions{
		Backend: MCDelaunay, Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.RoundsStored() != 50 {
		t.Fatal("rounds")
	}
}

// The two retrieval backends of the spiral search must agree exactly.
func TestSpiralBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := randDiscretes(rng, 30, 4, true)
	a, err := NewSpiral(pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSpiralQuadtree(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.Rho() != b.Rho() {
		t.Fatal("metadata differs")
	}
	for k := 0; k < 100; k++ {
		q := geom.Pt(rng.Float64()*24-12, rng.Float64()*24-12)
		pa, ma := a.Query(q, 0.05)
		pb, mb := b.Query(q, 0.05)
		if ma != mb || len(pa) != len(pb) {
			t.Fatalf("q=%v: retrieved %d vs %d, %d vs %d probs", q, ma, mb, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i].I != pb[i].I || math.Abs(pa[i].P-pb[i].P) > 1e-12 {
				t.Fatalf("q=%v: %v vs %v", q, pa[i], pb[i])
			}
		}
		// Adaptive mode too.
		pa2, _ := a.QueryAdaptive(q, 0.05)
		pb2, _ := b.QueryAdaptive(q, 0.05)
		if len(pa2) != len(pb2) {
			t.Fatalf("adaptive q=%v: %v vs %v", q, pa2, pb2)
		}
	}
}
