package quantify

import (
	"sort"

	"unn/internal/geom"
)

// Estimator is any structure that can estimate the quantification
// probabilities of a query point with a per-call accuracy knob. The
// Monte-Carlo and spiral structures both satisfy it through the adapters
// below.
type Estimator interface {
	// Estimate returns (sparse) probability estimates with additive error
	// at most eps per entry (with the structure's own confidence
	// semantics), treating omitted indices as 0.
	Estimate(q geom.Point, eps float64) []Prob
}

// SpiralEstimator adapts *Spiral to Estimator.
type SpiralEstimator struct{ S *Spiral }

// Estimate implements Estimator.
func (se SpiralEstimator) Estimate(q geom.Point, eps float64) []Prob {
	probs, _ := se.S.Query(q, eps)
	return probs
}

// MCEstimator adapts *MonteCarlo to Estimator; the error bound is the one
// its construction-time round count s was chosen for, independent of the
// eps argument.
type MCEstimator struct{ MC *MonteCarlo }

// Estimate implements Estimator.
func (me MCEstimator) Estimate(q geom.Point, _ float64) []Prob {
	return me.MC.Query(q)
}

// Threshold returns the points whose quantification probability
// (estimated within tau/2) is at least tau — the probabilistic threshold
// NN query of [DYM+05] discussed in §1.2. Every point with
// π_i(q) ≥ 3τ/2 is guaranteed in the answer and none with π_i(q) < τ/2
// can appear.
func Threshold(est Estimator, q geom.Point, tau float64) []Prob {
	var out []Prob
	for _, pr := range est.Estimate(q, tau/2) {
		if pr.P >= tau {
			out = append(out, pr)
		}
	}
	return sortProbs(out)
}

// TopK returns the k points with the largest estimated quantification
// probabilities, in non-increasing order (ties broken by index). eps
// controls the estimation accuracy of the underlying structure.
func TopK(est Estimator, q geom.Point, k int, eps float64) []Prob {
	probs := est.Estimate(q, eps)
	sort.Slice(probs, func(i, j int) bool {
		if probs[i].P != probs[j].P {
			return probs[i].P > probs[j].P
		}
		return probs[i].I < probs[j].I
	})
	if k < len(probs) {
		probs = probs[:k]
	}
	return probs
}
