package lmetric

import (
	"unn/internal/kdtree"
)

// Tree exposes the kd-tree over square centers for serialization.
func (t *TwoStageLinf) Tree() *kdtree.FlatTree { return t.tree }

// Tree exposes the inner (rotated-frame) kd-tree for serialization.
func (t *TwoStageL1) Tree() *kdtree.FlatTree { return t.inner.tree }

// RestoreTwoStageLinf reassembles a TwoStageLinf around an already-built
// tree — the snapshot path, skipping the O(n log n) kd-tree build. The
// tree must be the one NewTwoStageLinf would build over the same squares.
func RestoreTwoStageLinf(squares []Square, tree *kdtree.FlatTree) *TwoStageLinf {
	return &TwoStageLinf{squares: squares, tree: tree}
}

// RestoreTwoStageL1 reassembles a TwoStageL1 from the original
// (unrotated) diamonds and the persisted tree, which is built over the
// rotated squares (NewTwoStageL1 rotates before delegating to
// NewTwoStageLinf). The rotation is recomputed here — it is a cheap,
// deterministic O(n) pass, so only the tree needs persisting.
func RestoreTwoStageL1(diamonds []Square, tree *kdtree.FlatTree) *TwoStageL1 {
	rot := make([]Square, len(diamonds))
	for i, d := range diamonds {
		rot[i] = Square{C: d.C.RotL1(), R: d.R}
	}
	return &TwoStageL1{inner: &TwoStageLinf{squares: rot, tree: tree}}
}
