// Package lmetric implements the L1/L∞ variant of nonzero-NN searching —
// the remark after Theorem 3.1: "If we use L1 or L∞ metric ... and use
// disks in L1 or L∞ metric (i.e., a diamond or a square), then an NN≠0
// query can be answered [by the same two-stage plan]: the first stage
// remains the same and the second stage reduces to reporting a set of
// axis-aligned squares that intersect a query axis-aligned square."
//
// The L∞ case is native: uncertainty regions are axis-aligned squares
// (center + radius), δ_i and Δ_i are Chebyshev extreme distances, and the
// two-stage structure runs on Chebyshev kd-tree queries. The L1 case
// (diamond regions) reduces to L∞ by the standard 45° rotation
// p ↦ (x+y, x−y), under which d_1 = d_∞ and diamonds become squares.
package lmetric

import (
	"math"
	"slices"

	"unn/internal/geom"
	"unn/internal/kdtree"
)

// Square is an L∞ ball: the axis-aligned square with center C and
// half-side R. Under the L1 interpretation (see NewTwoStageL1) the same
// data denotes the diamond {p : d_1(p, C) ≤ R}.
type Square struct {
	C geom.Point
	R float64
}

// MinDist returns δ(q) = max(d_∞(q,C) − R, 0).
func (s Square) MinDist(q geom.Point) float64 {
	return math.Max(q.DistLinf(s.C)-s.R, 0)
}

// MaxDist returns Δ(q) = d_∞(q,C) + R.
func (s Square) MaxDist(q geom.Point) float64 { return q.DistLinf(s.C) + s.R }

// BruteLinf is the Lemma 2.1 oracle under the Chebyshev metric: the
// lemma's proof uses only the triangle inequality, so it holds verbatim
// for any metric with metric balls as uncertainty regions.
func BruteLinf(squares []Square, q geom.Point) []int {
	n := len(squares)
	if n == 0 {
		return nil
	}
	min1, min2 := math.Inf(1), math.Inf(1)
	arg1 := -1
	for i, s := range squares {
		v := s.MaxDist(q)
		if v < min1 {
			min2 = min1
			min1, arg1 = v, i
		} else if v < min2 {
			min2 = v
		}
	}
	var out []int
	for i, s := range squares {
		bound := min1
		if i == arg1 {
			bound = min2
		}
		if s.MinDist(q) < bound || n == 1 {
			out = append(out, i)
		}
	}
	return out
}

// TwoStageLinf answers NN≠0 queries over square (L∞ ball) regions:
// stage 1 computes Δ_∞(q) by an additively-weighted Chebyshev NN query,
// stage 2 reports all squares intersecting the open query square of
// radius Δ_∞(q) — exactly the square-intersects-square reduction of the
// paper's remark. Both stages run on the implicit-array kd-tree, and the
// QueryAppend path is allocation-free in steady state.
type TwoStageLinf struct {
	squares []Square
	tree    *kdtree.FlatTree
}

// NewTwoStageLinf preprocesses the squares in O(n log n).
func NewTwoStageLinf(squares []Square) *TwoStageLinf {
	items := make([]kdtree.Item, len(squares))
	for i, s := range squares {
		items[i] = kdtree.Item{P: s.C, W: s.R, ID: i}
	}
	return &TwoStageLinf{squares: squares, tree: kdtree.NewFlat(items)}
}

// Delta returns Δ_∞(q).
func (t *TwoStageLinf) Delta(q geom.Point) float64 {
	_, v, ok := t.tree.NearestAdditiveLinf(q)
	if !ok {
		return math.Inf(1)
	}
	return v
}

// Query returns NN≠0(q) under L∞, sorted ascending.
func (t *TwoStageLinf) Query(q geom.Point) []int {
	return t.QueryAppend(q, nil)
}

// QueryAppend appends NN≠0(q) under L∞, sorted ascending, to dst.
func (t *TwoStageLinf) QueryAppend(q geom.Point, dst []int) []int {
	n := len(t.squares)
	switch n {
	case 0:
		return dst
	case 1:
		return append(dst, 0)
	}
	nb, delta, _ := t.tree.NearestAdditiveLinf(q)
	if delta <= 0 {
		return append(dst, BruteLinf(t.squares, q)...)
	}
	start := len(dst)
	dst = t.tree.AppendBelowLinf(q, delta, dst)
	if nb.W == 0 { // degenerate certain point at the minimum
		i := nb.ID
		min2 := math.Inf(1)
		for j, s := range t.squares {
			if j != i {
				min2 = math.Min(min2, s.MaxDist(q))
			}
		}
		if t.squares[i].MinDist(q) < min2 {
			dst = append(dst, i)
		}
	}
	return sortDedupTail(dst, start)
}

// sortDedupTail sorts dst[start:] ascending and removes duplicates in
// place, leaving dst[:start] untouched.
func sortDedupTail(dst []int, start int) []int {
	tail := dst[start:]
	slices.Sort(tail)
	w := 0
	for r := 0; r < len(tail); r++ {
		if w == 0 || tail[w-1] != tail[r] {
			tail[w] = tail[r]
			w++
		}
	}
	return dst[:start+w]
}

// ---------------------------------------------------------------------------
// L1 (diamond regions) via the 45° rotation.

// TwoStageL1 answers NN≠0 queries over diamond (L1 ball) regions by
// rotating all centers and queries into L∞ coordinates.
type TwoStageL1 struct {
	inner *TwoStageLinf
}

// QueryAppend appends NN≠0(q) under L1, sorted ascending, to dst.
func (t *TwoStageL1) QueryAppend(q geom.Point, dst []int) []int {
	return t.inner.QueryAppend(q.RotL1(), dst)
}

// NewTwoStageL1 preprocesses diamonds given as (center, L1 radius).
func NewTwoStageL1(diamonds []Square) *TwoStageL1 {
	rot := make([]Square, len(diamonds))
	for i, d := range diamonds {
		rot[i] = Square{C: d.C.RotL1(), R: d.R}
	}
	return &TwoStageL1{inner: NewTwoStageLinf(rot)}
}

// Query returns NN≠0(q) under L1, sorted ascending.
func (t *TwoStageL1) Query(q geom.Point) []int {
	return t.inner.Query(q.RotL1())
}

// BruteL1 is the Lemma 2.1 oracle under the Manhattan metric.
func BruteL1(diamonds []Square, q geom.Point) []int {
	rot := make([]Square, len(diamonds))
	for i, d := range diamonds {
		rot[i] = Square{C: d.C.RotL1(), R: d.R}
	}
	return BruteLinf(rot, q.RotL1())
}
