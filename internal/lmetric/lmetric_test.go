package lmetric

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
)

func randSquares(rng *rand.Rand, n int) []Square {
	sq := make([]Square, n)
	for i := range sq {
		sq[i] = Square{
			C: geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15),
			R: 0.2 + rng.Float64()*2,
		}
	}
	return sq
}

func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSquareDistances(t *testing.T) {
	s := Square{C: geom.Pt(0, 0), R: 2}
	if got := s.MinDist(geom.Pt(5, 1)); got != 3 {
		t.Fatalf("MinDist = %v want 3", got)
	}
	if got := s.MaxDist(geom.Pt(5, 1)); got != 7 {
		t.Fatalf("MaxDist = %v want 7", got)
	}
	if got := s.MinDist(geom.Pt(1, 1)); got != 0 {
		t.Fatalf("inside MinDist = %v", got)
	}
}

// δ and Δ under L∞ must bracket the distance to every sampled point of
// the square region.
func TestExtremeDistancesBracketSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		s := Square{C: geom.Pt(rng.Float64()*10, rng.Float64()*10), R: 0.5 + rng.Float64()}
		q := geom.Pt(rng.Float64()*20-5, rng.Float64()*20-5)
		lo, hi := s.MinDist(q), s.MaxDist(q)
		for k := 0; k < 50; k++ {
			p := geom.Pt(
				s.C.X+(rng.Float64()*2-1)*s.R,
				s.C.Y+(rng.Float64()*2-1)*s.R,
			)
			d := q.DistLinf(p)
			if d < lo-1e-12 || d > hi+1e-12 {
				t.Fatalf("sample dist %v outside [%v, %v]", d, lo, hi)
			}
		}
	}
}

func TestTwoStageLinfMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		sq := randSquares(rng, 1+rng.Intn(40))
		ts := NewTwoStageLinf(sq)
		for k := 0; k < 200; k++ {
			q := geom.Pt(rng.Float64()*36-18, rng.Float64()*36-18)
			if got, want := ts.Query(q), BruteLinf(sq, q); !equalSets(got, want) {
				t.Fatalf("trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
	}
}

func TestTwoStageL1MatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		di := randSquares(rng, 1+rng.Intn(40))
		ts := NewTwoStageL1(di)
		for k := 0; k < 200; k++ {
			q := geom.Pt(rng.Float64()*36-18, rng.Float64()*36-18)
			if got, want := ts.Query(q), BruteL1(di, q); !equalSets(got, want) {
				t.Fatalf("trial %d q=%v: got %v want %v", trial, q, got, want)
			}
		}
	}
}

// The rotation identity behind the L1 reduction.
func TestRotL1Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 1000; k++ {
		p := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		q := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		if d := math.Abs(p.DistL1(q) - p.RotL1().DistLinf(q.RotL1())); d > 1e-12 {
			t.Fatalf("rotation identity broken by %v", d)
		}
	}
}

// An L1 diamond membership test: a point is within L1 distance R of C iff
// the rotated point is within L∞ distance R of the rotated center.
func TestDiamondMembershipViaRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Square{C: geom.Pt(1, 2), R: 1.5}
	for k := 0; k < 500; k++ {
		p := geom.Pt(rng.Float64()*6-2, rng.Float64()*6-1)
		in1 := p.DistL1(d.C) <= d.R
		rot := Square{C: d.C.RotL1(), R: d.R}
		in2 := p.RotL1().DistLinf(rot.C) <= rot.R
		if in1 != in2 {
			t.Fatalf("membership mismatch at %v", p)
		}
	}
}

// Degenerate: zero-radius squares (certain points under L∞).
func TestLinfCertainPoints(t *testing.T) {
	sq := []Square{{C: geom.Pt(0, 0)}, {C: geom.Pt(10, 0)}, {C: geom.Pt(5, 5), R: 1}}
	ts := NewTwoStageLinf(sq)
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 300; k++ {
		q := geom.Pt(rng.Float64()*12-1, rng.Float64()*12-6)
		if got, want := ts.Query(q), BruteLinf(sq, q); !equalSets(got, want) {
			t.Fatalf("q=%v: got %v want %v", q, got, want)
		}
	}
}
