package uncertain

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"unn/internal/geom"
)

// Discrete is an uncertain point with a finite location set: P is at
// Locs[j] with probability W[j] ("discrete distribution of description
// complexity k", §1.1). Weights sum to 1 after construction.
type Discrete struct {
	Locs []geom.Point
	W    []float64
	cum  []float64
}

// NewDiscrete validates locations/weights and normalizes the weights.
func NewDiscrete(locs []geom.Point, w []float64) (*Discrete, error) {
	if len(locs) == 0 || len(locs) != len(w) {
		return nil, fmt.Errorf("uncertain: discrete needs matching non-empty locations and weights")
	}
	for _, l := range locs {
		if math.IsNaN(l.X) || math.IsNaN(l.Y) || math.IsInf(l.X, 0) || math.IsInf(l.Y, 0) {
			return nil, fmt.Errorf("uncertain: non-finite location %v", l)
		}
	}
	total := 0.0
	for _, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("uncertain: location probabilities must be positive and finite (got %v)", v)
		}
		total += v
	}
	d := &Discrete{
		Locs: append([]geom.Point(nil), locs...),
		W:    make([]float64, len(w)),
		cum:  make([]float64, len(w)),
	}
	run := 0.0
	for i, v := range w {
		d.W[i] = v / total
		run += d.W[i]
		d.cum[i] = run
	}
	return d, nil
}

// UniformDiscrete builds a discrete point with equal weights 1/k.
func UniformDiscrete(locs []geom.Point) *Discrete {
	w := make([]float64, len(locs))
	for i := range w {
		w[i] = 1
	}
	d, err := NewDiscrete(locs, w)
	if err != nil {
		panic(err) // only possible for empty input; callers pass k >= 1
	}
	return d
}

// K returns the description complexity (number of locations).
func (d *Discrete) K() int { return len(d.Locs) }

// Support implements Point.
func (d *Discrete) Support() geom.Rect { return geom.RectAround(d.Locs...) }

// MinDist implements Point: δ(q) = min_j d(q, p_j) — the value of the
// nearest-point Voronoi surface of the location set (§2.2).
func (d *Discrete) MinDist(q geom.Point) float64 {
	best := math.Inf(1)
	for _, p := range d.Locs {
		best = math.Min(best, q.Dist(p))
	}
	return best
}

// MaxDist implements Point: Δ(q) = max_j d(q, p_j) — the farthest-point
// Voronoi surface of the location set (§2.2).
func (d *Discrete) MaxDist(q geom.Point) float64 {
	best := 0.0
	for _, p := range d.Locs {
		best = math.Max(best, q.Dist(p))
	}
	return best
}

// DistCDF implements Point: G_q(r) = Σ_{d(p_j,q) ≤ r} w_j, exactly as in
// Eq. (2).
func (d *Discrete) DistCDF(q geom.Point, r float64) float64 {
	total := 0.0
	for j, p := range d.Locs {
		if q.Dist(p) <= r {
			total += d.W[j]
		}
	}
	return total
}

// Sample implements Point in O(log k) by binary search on cumulative
// weights (the paper's "balanced binary tree" preprocessing, §4.2).
func (d *Discrete) Sample(rng *rand.Rand) geom.Point {
	u := rng.Float64()
	idx := sort.SearchFloat64s(d.cum, u)
	if idx >= len(d.Locs) {
		idx = len(d.Locs) - 1
	}
	return d.Locs[idx]
}

// Centroid returns the weighted mean location (the reduction point of the
// expected squared-distance NN of [AESZ12]).
func (d *Discrete) Centroid() geom.Point {
	var c geom.Point
	for j, p := range d.Locs {
		c = c.Add(p.Scale(d.W[j]))
	}
	return c
}

// Variance returns E‖P − centroid‖², the additive constant of the
// squared-distance reduction: E‖q−P‖² = ‖q−c‖² + Var.
func (d *Discrete) Variance() float64 {
	c := d.Centroid()
	v := 0.0
	for j, p := range d.Locs {
		v += d.W[j] * p.Dist2(c)
	}
	return v
}

// ExpectedDist returns E d(q, P) = Σ_j w_j d(q, p_j).
func (d *Discrete) ExpectedDist(q geom.Point) float64 {
	e := 0.0
	for j, p := range d.Locs {
		e += d.W[j] * q.Dist(p)
	}
	return e
}

// EnclosingDisk returns the smallest disk containing all locations.
func (d *Discrete) EnclosingDisk() geom.Disk {
	return geom.SmallestEnclosingDisk(d.Locs, nil)
}

// SpreadRatio returns max_j w_j / min_j w_j, the per-point contribution to
// the spread ρ of Eq. (9).
func (d *Discrete) SpreadRatio() float64 {
	lo, hi := math.Inf(1), 0.0
	for _, w := range d.W {
		lo, hi = math.Min(lo, w), math.Max(hi, w)
	}
	return hi / lo
}

// Discretize draws m samples from any uncertain point and packages them
// as a uniform discrete point — the continuous→discrete reduction of
// Theorem 4.5 (sample size k(α) = (c/α²) log(1/δ') per Lemma 4.4).
func Discretize(p Point, m int, rng *rand.Rand) *Discrete {
	locs := make([]geom.Point, m)
	for i := range locs {
		locs[i] = p.Sample(rng)
	}
	return UniformDiscrete(locs)
}

// SampleSizeForError returns the per-point sample size k(α) with α = ε/2n
// prescribed by Theorem 4.5 for additive error ε with failure probability
// δ, with the constant c set to 0.5 (the Dvoretzky–Kiefer–Wolfowitz
// constant, ample for the balls range space).
func SampleSizeForError(n int, eps, delta float64) int {
	alpha := eps / (2 * float64(n))
	deltaP := delta / (2 * float64(n))
	k := 0.5 / (alpha * alpha) * math.Log(2/deltaP)
	if k < 1 {
		k = 1
	}
	return int(math.Ceil(k))
}
