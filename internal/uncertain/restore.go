package uncertain

import (
	"fmt"
	"math"

	"unn/internal/geom"
)

// RestoreDiscrete reassembles a Discrete from weights that are already
// normalized — the snapshot path. Unlike NewDiscrete it adopts locs and
// w without copying or renormalizing, and rebuilds the cumulative-weight
// table with the same running sum NewDiscrete uses, so a point restored
// from weights that NewDiscrete produced is bit-identical to the
// original (including Sample's binary-search table). Inputs are still
// validated (matching non-empty lengths, finite positive weights) so a
// corrupted snapshot fails here instead of corrupting queries.
func RestoreDiscrete(locs []geom.Point, w []float64) (*Discrete, error) {
	if len(locs) == 0 || len(locs) != len(w) {
		return nil, fmt.Errorf("uncertain: restore needs matching non-empty locations and weights")
	}
	for _, l := range locs {
		if math.IsNaN(l.X) || math.IsNaN(l.Y) || math.IsInf(l.X, 0) || math.IsInf(l.Y, 0) {
			return nil, fmt.Errorf("uncertain: non-finite location %v", l)
		}
	}
	d := &Discrete{Locs: locs, W: w, cum: make([]float64, len(w))}
	run := 0.0
	for i, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("uncertain: location probabilities must be positive and finite (got %v)", v)
		}
		run += v
		d.cum[i] = run
	}
	return d, nil
}
