// Package uncertain defines the input model of the paper: uncertain
// points in the plane whose locations are probability distributions.
//
// Two families are supported, mirroring §1.1:
//
//   - continuous pdfs with bounded support (the uncertainty region):
//     uniform on a disk, Gaussian truncated to a disk (as in [BSI08,
//     CCMC08]), and grid histograms (the paper's non-parametric case);
//   - discrete distributions {(p_1,w_1),...,(p_k,w_k)} with Σw = 1
//     ("description complexity k").
//
// Every distribution exposes the three quantities the algorithms consume:
// the extreme distances δ(q) = min_{p∈Sup} d(q,p) and Δ(q) = max d(q,p)
// (Section 2), the distance cdf G_q(r) = Pr[d(q,P) ≤ r] (Eq. (1)/(2) and
// Figure 1), and random instantiation (Section 4.2).
package uncertain

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"unn/internal/geom"
)

// Point is an uncertain point.
type Point interface {
	// Support returns a bounding rectangle of the uncertainty region.
	Support() geom.Rect
	// MinDist returns δ(q), the minimum possible distance from q.
	MinDist(q geom.Point) float64
	// MaxDist returns Δ(q), the maximum possible distance from q.
	MaxDist(q geom.Point) float64
	// DistCDF returns G_q(r) = Pr[d(q, P) ≤ r].
	DistCDF(q geom.Point, r float64) float64
	// Sample draws one instantiation of the point.
	Sample(rng *rand.Rand) geom.Point
}

// DistPDF numerically differentiates the distance cdf; it reproduces the
// density g_{q,i} of Figure 1.
func DistPDF(p Point, q geom.Point, r, h float64) float64 {
	return (p.DistCDF(q, r+h) - p.DistCDF(q, r-h)) / (2 * h)
}

// ---------------------------------------------------------------------------
// Uniform distribution on a disk.

// UniformDisk is the uniform distribution on a closed disk — the model of
// the paper's running example (Figure 1).
type UniformDisk struct {
	D geom.Disk
}

// Support implements Point.
func (u UniformDisk) Support() geom.Rect { return u.D.Bounds() }

// MinDist implements Point: δ(q) = max(d(q,c) − R, 0).
func (u UniformDisk) MinDist(q geom.Point) float64 { return u.D.MinDist(q) }

// MaxDist implements Point: Δ(q) = d(q,c) + R.
func (u UniformDisk) MaxDist(q geom.Point) float64 { return u.D.MaxDist(q) }

// DistCDF implements Point: the mass of the disk inside B(q, r), i.e. the
// circular-lens area ratio.
func (u UniformDisk) DistCDF(q geom.Point, r float64) float64 {
	if r <= 0 {
		return 0
	}
	a := u.D.Area()
	if a == 0 {
		if q.Dist(u.D.C) <= r {
			return 1
		}
		return 0
	}
	return u.D.LensArea(geom.Disk{C: q, R: r}) / a
}

// Sample implements Point by polar inversion.
func (u UniformDisk) Sample(rng *rand.Rand) geom.Point {
	t := 2 * math.Pi * rng.Float64()
	rr := u.D.R * math.Sqrt(rng.Float64())
	return u.D.C.Add(geom.Dir(t).Scale(rr))
}

// ---------------------------------------------------------------------------
// Gaussian truncated to a disk.

// TruncGauss is an isotropic Gaussian centered at the disk center,
// truncated to the disk (the standard bounded-support Gaussian model the
// paper adopts from [BSI08, CCMC08]).
type TruncGauss struct {
	D     geom.Disk
	Sigma float64
	// mass memoizes the un-truncated Gaussian mass inside D.
	mass float64
}

// NewTruncGauss builds a truncated Gaussian with the given sigma.
func NewTruncGauss(d geom.Disk, sigma float64) *TruncGauss {
	// For an isotropic Gaussian, the mass within radius R of the mean is
	// 1 − exp(−R²/2σ²) (Rayleigh distribution of the radius).
	m := 1 - math.Exp(-(d.R*d.R)/(2*sigma*sigma))
	return &TruncGauss{D: d, Sigma: sigma, mass: m}
}

// Support implements Point.
func (g *TruncGauss) Support() geom.Rect { return g.D.Bounds() }

// MinDist implements Point.
func (g *TruncGauss) MinDist(q geom.Point) float64 { return g.D.MinDist(q) }

// MaxDist implements Point.
func (g *TruncGauss) MaxDist(q geom.Point) float64 { return g.D.MaxDist(q) }

// DistCDF implements Point by two-dimensional numeric integration of the
// truncated density over B(q, r) ∩ D in polar coordinates around the
// Gaussian mean. The integrand is smooth; 96×96 panels give ~1e-6
// accuracy at the scales used in the experiments.
func (g *TruncGauss) DistCDF(q geom.Point, r float64) float64 {
	if r <= g.MinDist(q) {
		return 0
	}
	if r >= g.MaxDist(q) {
		return 1
	}
	const nt, nr = 96, 96
	qc := geom.Disk{C: q, R: r}
	total := 0.0
	s2 := 2 * g.Sigma * g.Sigma
	for it := 0; it < nt; it++ {
		theta := (float64(it) + 0.5) / nt * 2 * math.Pi
		u := geom.Dir(theta)
		for ir := 0; ir < nr; ir++ {
			rho := (float64(ir) + 0.5) / nr * g.D.R
			p := g.D.C.Add(u.Scale(rho))
			if !qc.Contains(p) {
				continue
			}
			w := math.Exp(-rho*rho/s2) * rho
			total += w
		}
	}
	cell := (2 * math.Pi / nt) * (g.D.R / nr)
	total *= cell / (2 * math.Pi * g.Sigma * g.Sigma) // normalize the full Gaussian
	return math.Min(total/g.mass, 1)
}

// Sample implements Point by rejection from the untruncated Gaussian.
func (g *TruncGauss) Sample(rng *rand.Rand) geom.Point {
	for i := 0; i < 4096; i++ {
		p := g.D.C.Add(geom.Pt(rng.NormFloat64()*g.Sigma, rng.NormFloat64()*g.Sigma))
		if g.D.Contains(p) {
			return p
		}
	}
	// Pathological sigma ≫ R: fall back to uniform on the disk.
	return UniformDisk{g.D}.Sample(rng)
}

// ---------------------------------------------------------------------------
// Grid histogram.

// Histogram is a non-parametric pdf given as per-cell masses on a uniform
// grid (the paper's histogram case of §1.1). Weights are normalized at
// construction.
type Histogram struct {
	Origin geom.Point
	CellW  float64
	CellH  float64
	W      [][]float64 // W[row][col], row-major from Origin upward
	cum    []float64   // flattened cumulative masses for sampling
	box    geom.Rect
}

// NewHistogram validates and normalizes the cell masses.
func NewHistogram(origin geom.Point, cellW, cellH float64, w [][]float64) (*Histogram, error) {
	if cellW <= 0 || cellH <= 0 || len(w) == 0 {
		return nil, fmt.Errorf("uncertain: invalid histogram geometry")
	}
	total := 0.0
	for _, row := range w {
		if len(row) != len(w[0]) {
			return nil, fmt.Errorf("uncertain: ragged histogram")
		}
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("uncertain: negative cell mass")
			}
			total += v
		}
	}
	if total <= 0 {
		return nil, fmt.Errorf("uncertain: zero total mass")
	}
	h := &Histogram{Origin: origin, CellW: cellW, CellH: cellH}
	h.W = make([][]float64, len(w))
	for i, row := range w {
		h.W[i] = make([]float64, len(row))
		for j, v := range row {
			h.W[i][j] = v / total
		}
	}
	h.box = geom.EmptyRect()
	for i, row := range h.W {
		for j, v := range row {
			if v > 0 {
				h.box = h.box.Union(h.cellRect(i, j))
			}
		}
	}
	for _, row := range h.W {
		for _, v := range row {
			last := 0.0
			if len(h.cum) > 0 {
				last = h.cum[len(h.cum)-1]
			}
			h.cum = append(h.cum, last+v)
		}
	}
	return h, nil
}

func (h *Histogram) cellRect(i, j int) geom.Rect {
	lo := geom.Pt(h.Origin.X+float64(j)*h.CellW, h.Origin.Y+float64(i)*h.CellH)
	return geom.Rect{Min: lo, Max: geom.Pt(lo.X+h.CellW, lo.Y+h.CellH)}
}

// Support implements Point (bounding box of the positive-mass cells).
func (h *Histogram) Support() geom.Rect { return h.box }

// MinDist implements Point.
func (h *Histogram) MinDist(q geom.Point) float64 {
	best := math.Inf(1)
	for i, row := range h.W {
		for j, v := range row {
			if v > 0 {
				best = math.Min(best, h.cellRect(i, j).DistToPoint(q))
			}
		}
	}
	return best
}

// MaxDist implements Point.
func (h *Histogram) MaxDist(q geom.Point) float64 {
	best := 0.0
	for i, row := range h.W {
		for j, v := range row {
			if v > 0 {
				best = math.Max(best, h.cellRect(i, j).MaxDistToPoint(q))
			}
		}
	}
	return best
}

// DistCDF implements Point: per cell, fully-inside/outside tests plus an
// 8×8 subgrid for boundary cells.
func (h *Histogram) DistCDF(q geom.Point, r float64) float64 {
	total := 0.0
	for i, row := range h.W {
		for j, v := range row {
			if v == 0 {
				continue
			}
			rect := h.cellRect(i, j)
			switch {
			case rect.MaxDistToPoint(q) <= r:
				total += v
			case rect.DistToPoint(q) >= r:
				// no mass
			default:
				const sub = 8
				in := 0
				for a := 0; a < sub; a++ {
					for b := 0; b < sub; b++ {
						p := geom.Pt(
							rect.Min.X+(float64(b)+0.5)/sub*h.CellW,
							rect.Min.Y+(float64(a)+0.5)/sub*h.CellH,
						)
						if p.Dist(q) <= r {
							in++
						}
					}
				}
				total += v * float64(in) / (sub * sub)
			}
		}
	}
	return math.Min(total, 1)
}

// Sample implements Point: pick a cell by cumulative mass, uniform inside.
func (h *Histogram) Sample(rng *rand.Rand) geom.Point {
	u := rng.Float64()
	idx := sort.SearchFloat64s(h.cum, u)
	if idx >= len(h.cum) {
		idx = len(h.cum) - 1
	}
	cols := len(h.W[0])
	i, j := idx/cols, idx%cols
	rect := h.cellRect(i, j)
	return geom.Pt(
		rect.Min.X+rng.Float64()*h.CellW,
		rect.Min.Y+rng.Float64()*h.CellH,
	)
}
