package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"unn/internal/geom"
)

// checkCDF verifies that DistCDF is a proper cdf of d(q, P): monotone,
// 0 below MinDist, 1 above MaxDist, and within MC tolerance of sampling.
func checkCDF(t *testing.T, p Point, q geom.Point, rng *rand.Rand) {
	t.Helper()
	lo, hi := p.MinDist(q), p.MaxDist(q)
	if lo > hi {
		t.Fatalf("MinDist %v > MaxDist %v", lo, hi)
	}
	if c := p.DistCDF(q, lo-1e-6); c > 1e-9 {
		t.Fatalf("cdf below support = %v", c)
	}
	if c := p.DistCDF(q, hi+1e-6); math.Abs(c-1) > 1e-6 {
		t.Fatalf("cdf above support = %v", c)
	}
	prev := -1.0
	for i := 0; i <= 20; i++ {
		r := lo + (hi-lo)*float64(i)/20
		c := p.DistCDF(q, r)
		if c < prev-1e-9 {
			t.Fatalf("cdf not monotone at r=%v: %v < %v", r, c, prev)
		}
		prev = c
	}
	// Monte-Carlo agreement at the midpoint.
	rMid := (lo + hi) / 2
	const N = 40000
	hits := 0
	for i := 0; i < N; i++ {
		if p.Sample(rng).Dist(q) <= rMid {
			hits++
		}
	}
	want := p.DistCDF(q, rMid)
	got := float64(hits) / N
	if math.Abs(got-want) > 0.015 {
		t.Fatalf("cdf(%v): MC %v vs analytic %v", rMid, got, want)
	}
	// Samples stay in the support box.
	box := p.Support().Inflate(1e-9)
	for i := 0; i < 1000; i++ {
		if s := p.Sample(rng); !box.Contains(s) {
			t.Fatalf("sample %v outside support %v", s, box)
		}
	}
}

func TestUniformDiskCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UniformDisk{D: geom.DiskAt(0, 0, 5)}
	checkCDF(t, u, geom.Pt(6, 8), rng)
	checkCDF(t, u, geom.Pt(1, 0), rng) // query inside the disk
}

// TestFigure1Shape reproduces the qualitative content of Figure 1: for
// D = disk(O, 5) and q = (6,8) (d(q,O) = 10), the distance pdf is
// supported on [5, 15] with an interior maximum. The density is
// proportional to the arc length of ∂B(q,r) inside D, which peaks
// slightly beyond r = d(q,O) (at ≈ 11.2 for this configuration).
func TestFigure1Shape(t *testing.T) {
	u := UniformDisk{D: geom.DiskAt(0, 0, 5)}
	q := geom.Pt(6, 8)
	if u.MinDist(q) != 5 || u.MaxDist(q) != 15 {
		t.Fatalf("support [%v, %v]", u.MinDist(q), u.MaxDist(q))
	}
	peakR, peakV := 0.0, 0.0
	for i := 1; i < 100; i++ {
		r := 5 + 10*float64(i)/100
		v := DistPDF(u, q, r, 1e-4)
		if v < -1e-9 {
			t.Fatalf("negative density at r=%v", r)
		}
		if v > peakV {
			peakR, peakV = r, v
		}
	}
	if peakV <= 0 {
		t.Fatal("density identically zero")
	}
	if peakR <= 9 || peakR >= 13 {
		t.Fatalf("peak at %v, expected an interior maximum near 11", peakR)
	}
	// Compare against the analytic density: g(r) = r·φ(r)·2/(πR²) where
	// φ is the half-angle of ∂B(q,r) inside D.
	dq, R := 10.0, 5.0
	for _, r := range []float64{6, 8, 10, 12, 14} {
		cosPhi := (r*r + dq*dq - R*R) / (2 * r * dq)
		phi := math.Acos(math.Max(-1, math.Min(1, cosPhi)))
		want := 2 * r * phi / (math.Pi * R * R)
		got := DistPDF(u, q, r, 1e-5)
		if math.Abs(got-want) > 1e-3*(1+want) {
			t.Fatalf("g(%v) = %v want %v", r, got, want)
		}
	}
}

func TestTruncGaussCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewTruncGauss(geom.DiskAt(3, -1, 4), 1.5)
	checkCDF(t, g, geom.Pt(9, 2), rng)
	checkCDF(t, g, geom.Pt(3, 0), rng)
}

func TestHistogramCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := NewHistogram(geom.Pt(0, 0), 1, 1, [][]float64{
		{1, 2, 0},
		{0, 3, 1},
		{2, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCDF(t, h, geom.Pt(5, 5), rng)
	checkCDF(t, h, geom.Pt(1.5, 1.5), rng)
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(geom.Pt(0, 0), 1, 1, [][]float64{{1, -1}}); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := NewHistogram(geom.Pt(0, 0), 0, 1, [][]float64{{1}}); err == nil {
		t.Error("zero cell width accepted")
	}
	if _, err := NewHistogram(geom.Pt(0, 0), 1, 1, [][]float64{{0, 0}}); err == nil {
		t.Error("zero total mass accepted")
	}
	if _, err := NewHistogram(geom.Pt(0, 0), 1, 1, [][]float64{{1, 1}, {1}}); err == nil {
		t.Error("ragged grid accepted")
	}
}

func TestDiscreteBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := NewDiscrete(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(0, 3)},
		[]float64{2, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.W[0]-0.5) > 1e-12 {
		t.Fatalf("normalization: %v", d.W)
	}
	q := geom.Pt(0, 0)
	if d.MinDist(q) != 0 || d.MaxDist(q) != 4 {
		t.Fatalf("min/max dist %v %v", d.MinDist(q), d.MaxDist(q))
	}
	if got := d.DistCDF(q, 3); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("cdf(3) = %v", got) // (0,0) w=.5 and (0,3) w=.25
	}
	// Tie at exactly r = 3: the ≤ in Eq. (2) includes it.
	if got := d.DistCDF(q, 3-1e-12); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("cdf(3-) = %v", got)
	}
	checkCDF(t, d, geom.Pt(2, 2), rng)
	// Sampling frequencies.
	counts := map[geom.Point]int{}
	const N = 30000
	for i := 0; i < N; i++ {
		counts[d.Sample(rng)]++
	}
	if math.Abs(float64(counts[geom.Pt(0, 0)])/N-0.5) > 0.02 {
		t.Fatalf("sample frequency off: %v", counts)
	}
}

func TestDiscreteValidation(t *testing.T) {
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewDiscrete([]geom.Point{geom.Pt(0, 0)}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewDiscrete([]geom.Point{geom.Pt(0, 0)}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// The squared-distance reduction used by the expected-NN structure of
// [AESZ12]: E‖q−P‖² = ‖q−centroid‖² + Variance, for every q.
func TestCentroidVarianceReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		locs := make([]geom.Point, k)
		w := make([]float64, k)
		for i := range locs {
			locs[i] = geom.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3)
			w[i] = rng.Float64() + 0.05
		}
		d, err := NewDiscrete(locs, w)
		if err != nil {
			t.Fatal(err)
		}
		c, v := d.Centroid(), d.Variance()
		for j := 0; j < 20; j++ {
			q := geom.Pt(rng.NormFloat64()*5, rng.NormFloat64()*5)
			direct := 0.0
			for i, p := range d.Locs {
				direct += d.W[i] * q.Dist2(p)
			}
			if math.Abs(direct-(q.Dist2(c)+v)) > 1e-9*(1+direct) {
				t.Fatalf("reduction broken: %v vs %v", direct, q.Dist2(c)+v)
			}
		}
	}
}

// Discretize must approximate the distance cdf uniformly (Eq. (7)):
// |G − Ḡ| ≤ α with sample size ~ 1/α² log(1/δ).
func TestDiscretizeCDFApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := UniformDisk{D: geom.DiskAt(0, 0, 3)}
	alpha := 0.05
	m := int(2 / (alpha * alpha)) // generous constant
	dd := Discretize(u, m, rng)
	for trial := 0; trial < 40; trial++ {
		q := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		r := rng.Float64() * 10
		g1 := u.DistCDF(q, r)
		g2 := dd.DistCDF(q, r)
		if math.Abs(g1-g2) > alpha {
			t.Fatalf("cdf approximation error %v > alpha=%v at q=%v r=%v",
				math.Abs(g1-g2), alpha, q, r)
		}
	}
}

func TestSampleSizeForError(t *testing.T) {
	k := SampleSizeForError(10, 0.1, 0.1)
	if k <= 0 {
		t.Fatal("non-positive sample size")
	}
	// Must grow like n²/ε².
	k2 := SampleSizeForError(20, 0.1, 0.1)
	if k2 < 3*k {
		t.Fatalf("expected ~4x growth doubling n: %d -> %d", k, k2)
	}
	k3 := SampleSizeForError(10, 0.05, 0.1)
	if k3 < 3*k {
		t.Fatalf("expected ~4x growth halving eps: %d -> %d", k, k3)
	}
}

func TestSpreadRatio(t *testing.T) {
	d, _ := NewDiscrete(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)},
		[]float64{0.2, 0.8},
	)
	if got := d.SpreadRatio(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("spread %v want 4", got)
	}
}
