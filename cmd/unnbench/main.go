// Command unnbench regenerates every experiment table of EXPERIMENTS.md
// (one table per reproduced theorem/figure of the paper) and the
// machine-readable engine benchmark used to track the perf trajectory
// across PRs.
//
// Usage:
//
//	unnbench                 # run every experiment (full sweeps)
//	unnbench -quick          # CI-sized sweeps
//	unnbench -exp E2,E11     # selected experiments
//	unnbench -list           # list experiments and claims
//	unnbench -seed 42        # reproducible workloads
//	unnbench -json out.json  # engine benchmark → machine-readable JSON
//	unnbench -snapshot p.unns  # persist/reuse the E21 flagship index
//
// With -json, the engine sweep (E16) runs every adapted backend through
// the unified engine layer, the shard-scaling sweep (E17) runs the
// sharded execution layer at k ∈ {0,1,2,4,8,NumCPU}, the streaming
// sweep (E18) runs interleaved insert/delete/query against the dynamic
// shard layer (amortized mutation cost vs the full-rebuild baseline),
// the planner sweep (E19) pits the cost-based query planner against the
// rule-based auto router on a mixed NN≠0/π/E[d] workload, the mutation-
// batching sweep (E20) pits BatchMutate bursts against per-item
// mutations and measures the insert buffer's amortization (batched vs
// per-item ns/op, buffer hit fraction), the snapshot sweep (E21) times
// restoring an engine from its versioned binary snapshot against the
// cold build it replaces (snapshot_load_ns vs build_ns, snapshot_bytes,
// and a parity checksum over NN≠0 answers), the top-k sweep (E22) runs
// the registry-added kind across the execution layers, and the
// batch-tiling sweep (E23) pits the tiled shard-affine batch executor
// (multi-query kernels + in-batch dedup) against the scalar batch path
// on hot-skew and unique workloads, and the drift sweep (E24) flips the
// query mix mid-stream and pits the adaptive replanning loop (observe →
// drift-detect → per-shard replan → atomic swap) against the frozen
// build-time plan (replans, replan_reason, and an exactness parity
// fingerprint against a monolithic oracle). Records of the form
//
//	{"backend": "montecarlo", "n": 1000, "queries": 256, "workers": 8,
//	 "build_ns": ..., "query_ns_op": ..., "batch_ns_op": ...,
//	 "shards": ..., "cache_hit_rate": ..., "cache_quantum": ...,
//	 "mutate_ns_op": ..., "rebuild_ns_op": ..., "plan": ...}
//
// are written to the given path (conventionally BENCH_engine.json),
// alongside the usual tables on stdout. cmd/benchdiff compares two such
// files and flags throughput regressions across runs (including the
// planner falling behind the rule-based auto), and the same file doubles
// as the planner's calibration table (unn.WithCalibration).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unn/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		exp      = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed     = flag.Int64("seed", 0, "workload seed (0 = default)")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonPath = flag.String("json", "", "write the engine benchmark (E16) as JSON to this path")
		snapPath = flag.String("snapshot", "", "persist the E21 flagship index snapshot to this path and reuse it across runs")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed, SnapshotPath: *snapPath}

	if *jsonPath != "" {
		recs, tab := experiments.EngineBench(opt)
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		shardRecs, shardTab := experiments.ShardBench(opt)
		if _, err := shardTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, shardRecs...)
		streamRecs, streamTab := experiments.StreamBench(opt)
		if _, err := streamTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, streamRecs...)
		planRecs, planTab := experiments.PlannerBench(opt)
		if _, err := planTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, planRecs...)
		mutRecs, mutTab := experiments.MutationBench(opt)
		if _, err := mutTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, mutRecs...)
		snapRecs, snapTab := experiments.SnapshotBench(opt)
		if _, err := snapTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, snapRecs...)
		topkRecs, topkTab := experiments.TopKBench(opt)
		if _, err := topkTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, topkRecs...)
		tileRecs, tileTab := experiments.BatchTileBench(opt)
		if _, err := tileTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, tileRecs...)
		adaptRecs, adaptTab := experiments.AdaptiveBench(opt)
		if _, err := adaptTab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		recs = append(recs, adaptRecs...)
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteBenchJSON(f, recs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "unnbench: wrote %d records to %s\n", len(recs), *jsonPath)
		if *exp == "" {
			return
		}
	}

	var ids []string
	if *exp == "" {
		for _, e := range experiments.All {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unnbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		tab := run(opt)
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unnbench: %v\n", err)
	os.Exit(1)
}
