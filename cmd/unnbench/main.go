// Command unnbench regenerates every experiment table of EXPERIMENTS.md:
// one table per reproduced theorem/figure of the paper.
//
// Usage:
//
//	unnbench                 # run every experiment (full sweeps)
//	unnbench -quick          # CI-sized sweeps
//	unnbench -exp E2,E11     # selected experiments
//	unnbench -list           # list experiments and claims
//	unnbench -seed 42        # reproducible workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unn/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "shrink sweeps for a fast run")
		exp   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed  = flag.Int64("seed", 0, "workload seed (0 = default)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	var ids []string
	if *exp == "" {
		for _, e := range experiments.All {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unnbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		tab := run(opt)
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "unnbench: %v\n", err)
			os.Exit(1)
		}
	}
}
