// Command benchdiff compares two BENCH_engine.json files (the
// machine-readable engine benchmark emitted by `unnbench -json`) and
// warns about throughput regressions — the perf-trajectory gate run by
// `make benchdiff` in CI against the previous run's artifact.
//
// Usage:
//
//	benchdiff -old prev/BENCH_engine.json -new BENCH_engine.json
//	benchdiff -threshold 0.2 -exp E17,E18,E19,E20,E21,E22,E23,E24 -fail ...
//
// Records are matched by (exp, backend, n, shards); within a matched
// pair every populated per-op cost (query_ns_op, batch_ns_op,
// mutate_ns_op, rebuild_ns_op) is compared, and a metric that slowed by
// more than the threshold (default 20%) prints a WARN line. The E19
// planner sweep additionally gets an intra-run invariant: the
// cost-based planner's mixed-workload throughput must not fall below
// the rule-based auto's in the *new* file (a planner that plans itself
// slower than the rule it replaced is a calibration bug, whatever the
// previous run did). A second intra-run invariant guards the flat
// kernels: measured allocs_per_query on the kernel-served NN≠0 rows
// (E17, and the E16 brute / two-stage backends) must stay at zero
// steady state. A third set guards the E21 snapshot layer: within the
// new file, snapshot restore must stay ≥10× faster than the cold build
// it replaces and the parity checksum must read ok; against the
// baseline, snapshot_bytes must not grow beyond the threshold. A
// fourth set guards the E23 tiled batch executor: on the hot-skew
// workload the tiled path must stay ≥1.5× faster than the scalar batch
// at the same (n, shards), its answers bit-identical (parity ok), and
// its steady-state allocations zero. A fifth set guards the E24
// adaptive replanning loop: under the mid-stream mix flip the adaptive
// engine must have replanned at least once, serve the drifted workload
// ≥1.3× faster than the frozen plan at the same (n, shards), and its
// post-swap answers must fingerprint identically to the monolithic
// oracle (parity ok).
// Benchmark noise makes hard failures
// counterproductive, so the exit status stays 0 unless -fail is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"unn/internal/experiments"
)

type key struct {
	exp     string
	backend string
	n       int
	shards  int
}

func load(path string) (map[key]experiments.BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []experiments.BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[key]experiments.BenchRecord, len(recs))
	for _, r := range recs {
		m[key{r.Exp, r.Backend, r.N, r.Shards}] = r
	}
	return m, nil
}

func main() {
	var (
		oldPath   = flag.String("old", "", "previous BENCH_engine.json (the baseline)")
		newPath   = flag.String("new", "BENCH_engine.json", "fresh BENCH_engine.json")
		threshold = flag.Float64("threshold", 0.20, "relative slowdown that counts as a regression")
		exps      = flag.String("exp", "E17,E18,E19,E20,E21,E22,E23,E24", "comma-separated experiments to compare")
		failFlag  = flag.Bool("fail", false, "exit non-zero when regressions are found")
	)
	flag.Parse()
	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old is required (the previous run's artifact)")
		os.Exit(2)
	}
	oldRecs, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRecs, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToUpper(e))] = true
	}

	metrics := []struct {
		name string
		get  func(experiments.BenchRecord) float64
	}{
		{"query_ns_op", func(r experiments.BenchRecord) float64 { return r.QueryNsOp }},
		{"batch_ns_op", func(r experiments.BenchRecord) float64 { return r.BatchNsOp }},
		{"mutate_ns_op", func(r experiments.BenchRecord) float64 { return r.MutateNsOp }},
		{"rebuild_ns_op", func(r experiments.BenchRecord) float64 { return r.RebuildNsOp }},
		{"snapshot_load_ns", func(r experiments.BenchRecord) float64 { return float64(r.SnapshotLoadNs) }},
	}
	compared, regressions := 0, 0
	for k, nr := range newRecs {
		if !want[strings.ToUpper(k.exp)] {
			continue
		}
		or, ok := oldRecs[k]
		if !ok {
			fmt.Printf("NEW:  %s %s n=%d k=%d has no baseline row\n", k.exp, k.backend, k.n, k.shards)
			continue
		}
		for _, m := range metrics {
			was, now := m.get(or), m.get(nr)
			if was <= 0 || now <= 0 {
				continue
			}
			compared++
			rel := now/was - 1
			if rel > *threshold {
				regressions++
				fmt.Printf("WARN: %s %s n=%d k=%d %s regressed %+.1f%% (%.0fns → %.0fns)\n",
					k.exp, k.backend, k.n, k.shards, m.name, 100*rel, was, now)
			}
		}
	}
	if want["E19"] {
		regressions += checkPlannerInvariant(newRecs, *threshold)
	}
	regressions += checkAllocFree(newRecs, want)
	if want["E21"] {
		regressions += checkSnapshotInvariant(newRecs, oldRecs, *threshold)
	}
	if want["E22"] {
		regressions += checkTopKInvariant(newRecs, *threshold)
	}
	if want["E23"] {
		regressions += checkBatchTileInvariant(newRecs)
	}
	if want["E24"] {
		regressions += checkAdaptiveInvariant(newRecs)
	}
	fmt.Printf("benchdiff: %d metrics compared, %d regressions beyond %.0f%% (%s)\n",
		compared, regressions, 100**threshold, *exps)
	if *failFlag && regressions > 0 {
		os.Exit(1)
	}
}

// checkPlannerInvariant warns when the fresh E19 sweep shows the
// cost-based planner's mixed-workload latency more than the noise
// threshold above the rule-based auto's at the same instance size — the
// planner exists to beat that baseline, so falling below it means the
// calibration mispriced a backend. Gated on E19 being in the -exp
// scope and slackened by -threshold, like every other comparison.
// Returns the number of violations (counted as regressions).
func checkPlannerInvariant(recs map[key]experiments.BenchRecord, threshold float64) int {
	autos := map[int]experiments.BenchRecord{}
	planners := map[int]experiments.BenchRecord{}
	for k, r := range recs {
		if !strings.EqualFold(k.exp, "E19") {
			continue
		}
		switch k.backend {
		case "auto":
			autos[k.n] = r
		case "planner":
			planners[k.n] = r
		}
	}
	violations := 0
	for n, pr := range planners {
		ar, ok := autos[n]
		if !ok || ar.QueryNsOp <= 0 || pr.QueryNsOp <= 0 {
			continue
		}
		if pr.QueryNsOp > ar.QueryNsOp*(1+threshold) {
			violations++
			fmt.Printf("WARN: E19 n=%d planner mixed throughput below rule-based auto (%.0fns vs %.0fns per query; plan %s)\n",
				n, pr.QueryNsOp, ar.QueryNsOp, pr.Plan)
		}
	}
	return violations
}

// checkAllocFree enforces the flat-kernel invariant on the fresh file:
// every measured allocs_per_query on the kernel-served NN≠0 rows —
// E17 sharded rows, the E16 brute / two-stage rows, the E23 tiled
// batch rows (measured through BatchNonzeroInto), and the E24 adaptive
// row (QueryNonzeroInto with the adaptive loop's windowed observation
// enabled) — must stay at zero steady state. The bar is 0.5, not literally 0: the measurement
// amortizes one post-GC scratch-pool refill over its rounds, so an
// allocation-free path reads ≪ 0.5 and a path that re-grew a real
// per-query allocation reads ≥ 1. Rows with allocs_per_query = -1
// (backend without an NN≠0 path, e.g. the diagram's label store, or a
// pre-kernel baseline file) are skipped. Scoped by -exp like the rest.
func checkAllocFree(recs map[key]experiments.BenchRecord, want map[string]bool) int {
	allocFree := map[string]bool{
		"brute": true, "twostage-disks": true, "twostage-discrete": true,
		"twostage-linf": true, "twostage-l1": true,
	}
	violations := 0
	for k, r := range recs {
		if !want[strings.ToUpper(k.exp)] || r.AllocsPerQuery < 0 {
			continue
		}
		measured := strings.EqualFold(k.exp, "E17") ||
			strings.EqualFold(k.exp, "E23") ||
			strings.EqualFold(k.exp, "E24") ||
			(strings.EqualFold(k.exp, "E16") && allocFree[k.backend])
		if measured && r.AllocsPerQuery > 0.5 {
			violations++
			fmt.Printf("WARN: %s %s n=%d k=%d allocates on the NN≠0 query path (%.2f allocs/op, want 0 steady state)\n",
				k.exp, k.backend, k.n, k.shards, r.AllocsPerQuery)
		}
	}
	return violations
}

// checkSnapshotInvariant guards the E21 snapshot layer. Intra-run, on
// the fresh file: snapshot restore must stay ≥10× faster than the cold
// build it replaces (the snapshot PR's acceptance bar), and the parity
// field must read ok — an answer or Explain mismatch between live and
// restored engines is a correctness bug regardless of timing. Against
// the baseline: snapshot_bytes must not grow beyond the threshold (a
// silently fattening format erodes the load-time win). Rows without a
// build measurement (reused-snapshot runs) only get the parity and
// size checks, as do quick-sized rows (n < 10k): the 10× bar is stated
// at n = 100k, and at toy sizes the cold build is too cheap for the
// ratio to be meaningful. Returns the number of violations.
func checkSnapshotInvariant(newRecs, oldRecs map[key]experiments.BenchRecord, threshold float64) int {
	const minSpeedup = 10.0
	const minN = 10000
	violations := 0
	for k, r := range newRecs {
		if !strings.EqualFold(k.exp, "E21") {
			continue
		}
		if r.Parity != "" && r.Parity != "reused" && !strings.HasPrefix(r.Parity, "ok") {
			violations++
			fmt.Printf("WARN: E21 %s n=%d snapshot parity broken (%s): restored engine disagrees with live build\n",
				k.backend, k.n, r.Parity)
		}
		if r.BuildNs > 0 && r.SnapshotLoadNs > 0 && k.n >= minN {
			speedup := float64(r.BuildNs) / float64(r.SnapshotLoadNs)
			if speedup < minSpeedup {
				violations++
				fmt.Printf("WARN: E21 %s n=%d snapshot load only %.1fx faster than cold build (want ≥%.0fx; %dns vs %dns)\n",
					k.backend, k.n, speedup, minSpeedup, r.SnapshotLoadNs, r.BuildNs)
			}
		}
		if or, ok := oldRecs[k]; ok && or.SnapshotBytes > 0 && r.SnapshotBytes > 0 {
			rel := float64(r.SnapshotBytes)/float64(or.SnapshotBytes) - 1
			if rel > threshold {
				violations++
				fmt.Printf("WARN: E21 %s n=%d snapshot grew %+.1f%% (%dB → %dB)\n",
					k.backend, k.n, 100*rel, or.SnapshotBytes, r.SnapshotBytes)
			}
		}
	}
	return violations
}

// checkTopKInvariant is the E22 intra-run sanity bound: a top-k query
// is one π sweep plus an O(n log k) selection, so a "<config>-topk<k>"
// row's query_ns_op must stay within a small factor of the same
// configuration's "<config>-probs" baseline at the same (n, shards).
// The bar is 1.5× plus the noise threshold — far above the selection's
// real cost, low enough to catch a top-k path that re-runs the sweep
// per rank or fell off the shared merge. Returns the violation count.
func checkTopKInvariant(recs map[key]experiments.BenchRecord, threshold float64) int {
	const selectionSlack = 1.5
	type cfg struct {
		name   string
		n      int
		shards int
	}
	probs := map[cfg]experiments.BenchRecord{}
	for k, r := range recs {
		if strings.EqualFold(k.exp, "E22") && strings.HasSuffix(k.backend, "-probs") {
			probs[cfg{strings.TrimSuffix(k.backend, "-probs"), k.n, k.shards}] = r
		}
	}
	violations := 0
	for k, r := range recs {
		if !strings.EqualFold(k.exp, "E22") {
			continue
		}
		i := strings.LastIndex(k.backend, "-topk")
		if i < 0 {
			continue
		}
		pr, ok := probs[cfg{k.backend[:i], k.n, k.shards}]
		if !ok || pr.QueryNsOp <= 0 || r.QueryNsOp <= 0 {
			continue
		}
		if r.QueryNsOp > pr.QueryNsOp*selectionSlack*(1+threshold) {
			violations++
			fmt.Printf("WARN: E22 %s n=%d k=%d top-k latency %.0fns exceeds %.1fx its π baseline (%.0fns)\n",
				k.backend, k.n, k.shards, r.QueryNsOp, selectionSlack*(1+threshold), pr.QueryNsOp)
		}
	}
	return violations
}

// checkBatchTileInvariant is the E23 intra-run bound on the fresh file:
// on the hot-skew workload the tiled shard-affine batch executor must
// stay ≥1.5× faster than the scalar batch path at the same (n, shards)
// — the batch-tiling PR's acceptance bar is 2×; 1.5× is the regression
// floor below which in-batch dedup has effectively stopped working —
// and the tiled hot row's parity fingerprint must read ok (the tiled
// executor is contractually bit-identical to the scalar batch). The
// uniq rows are informational (the no-sharing bound hovers near 1×) and
// are guarded only by the generic per-metric baseline comparison.
func checkBatchTileInvariant(recs map[key]experiments.BenchRecord) int {
	const minSpeedup = 1.5
	scalars := map[key]experiments.BenchRecord{}
	for k, r := range recs {
		if strings.EqualFold(k.exp, "E23") && strings.HasSuffix(k.backend, "-hot-scalar") {
			k.backend = strings.TrimSuffix(k.backend, "-scalar")
			scalars[k] = r
		}
	}
	violations := 0
	for k, r := range recs {
		if !strings.EqualFold(k.exp, "E23") || !strings.HasSuffix(k.backend, "-hot-tiled") {
			continue
		}
		if r.Parity != "" && !strings.HasPrefix(r.Parity, "ok") {
			violations++
			fmt.Printf("WARN: E23 %s n=%d batch parity broken (%s): tiled executor disagrees with scalar batch\n",
				k.backend, k.n, r.Parity)
		}
		sk := k
		sk.backend = strings.TrimSuffix(k.backend, "-tiled")
		sr, ok := scalars[sk]
		if !ok || sr.BatchNsOp <= 0 || r.BatchNsOp <= 0 {
			continue
		}
		if speedup := sr.BatchNsOp / r.BatchNsOp; speedup < minSpeedup {
			violations++
			fmt.Printf("WARN: E23 %s n=%d hot-batch speedup only %.2fx over the scalar path (want ≥%.1fx; %.0fns vs %.0fns)\n",
				k.backend, k.n, speedup, minSpeedup, r.BatchNsOp, sr.BatchNsOp)
		}
	}
	return violations
}

// checkAdaptiveInvariant is the E24 intra-run bound on the fresh file:
// after the mid-stream mix flip the adaptive engine must (a) have
// replanned at least once — a zero replan count means the drift
// detector slept through a flipped workload — (b) serve the drifted
// query list ≥1.3× faster than the frozen control at the same
// (n, shards) — the adaptive-replanning PR's acceptance bar — and (c)
// carry an ok parity fingerprint: the epoch-fenced swap is contractually
// answer-preserving (NN≠0 bit-identical, π/E[d] within 1e-12 of the
// monolithic oracle), so a mismatch is a correctness bug whatever the
// timings say.
func checkAdaptiveInvariant(recs map[key]experiments.BenchRecord) int {
	const minSpeedup = 1.3
	frozen := map[key]experiments.BenchRecord{}
	for k, r := range recs {
		if strings.EqualFold(k.exp, "E24") && strings.HasSuffix(k.backend, "-frozen") {
			k.backend = strings.TrimSuffix(k.backend, "-frozen")
			frozen[k] = r
		}
	}
	violations := 0
	for k, r := range recs {
		if !strings.EqualFold(k.exp, "E24") || !strings.HasSuffix(k.backend, "-adaptive") {
			continue
		}
		if r.Replans == 0 {
			violations++
			fmt.Printf("WARN: E24 %s n=%d never replanned under the flipped mix (drift detector asleep)\n",
				k.backend, k.n)
		}
		if r.Parity != "" && !strings.HasPrefix(r.Parity, "ok") {
			violations++
			fmt.Printf("WARN: E24 %s n=%d replan parity broken (%s): swapped fleet disagrees with the oracle\n",
				k.backend, k.n, r.Parity)
		}
		fk := k
		fk.backend = strings.TrimSuffix(k.backend, "-adaptive")
		fr, ok := frozen[fk]
		if !ok || fr.QueryNsOp <= 0 || r.QueryNsOp <= 0 {
			continue
		}
		if speedup := fr.QueryNsOp / r.QueryNsOp; speedup < minSpeedup {
			violations++
			fmt.Printf("WARN: E24 %s n=%d post-drift speedup only %.2fx over the frozen plan (want ≥%.1fx; %.0fns vs %.0fns)\n",
				k.backend, k.n, speedup, minSpeedup, r.QueryNsOp, fr.QueryNsOp)
		}
	}
	return violations
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
