// Command unnviz renders diagrams of the library to SVG: the nonzero
// Voronoi diagram V≠0(P) of a random disk or discrete instance, or the
// bisector arrangement refining the probabilistic Voronoi diagram V_Pr.
//
// Usage:
//
//	unnviz -kind disks    -n 8  -o vneq0_disks.svg
//	unnviz -kind discrete -n 6 -k 3 -o vneq0_discrete.svg
//	unnviz -kind vpr      -n 4 -k 2 -o vpr.svg
//	unnviz -kind lowerbound -m 3 -o lb.svg   # Theorem 2.8 construction
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"unn/internal/constructions"
	"unn/internal/geom"
	"unn/internal/nonzero"
	"unn/internal/quantify"
	"unn/internal/svg"
)

func main() {
	var (
		kind = flag.String("kind", "disks", "disks | discrete | vpr | lowerbound")
		n    = flag.Int("n", 8, "number of uncertain points")
		k    = flag.Int("k", 3, "locations per discrete point")
		m    = flag.Int("m", 3, "size parameter of the lower-bound construction")
		seed = flag.Int64("seed", 1, "workload seed")
		out  = flag.String("o", "", "output file (default stdout)")
		px   = flag.Float64("px", 900, "image width in pixels")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	rng := rand.New(rand.NewSource(*seed))

	switch *kind {
	case "disks":
		disks := constructions.RandomDisks(rng, *n, 40, 1, 4)
		renderDisks(w, disks, *px)
	case "lowerbound":
		disks := constructions.LowerBoundEqual(*m)
		renderDisks(w, disks, *px)
	case "discrete":
		pts := constructions.RandomDiscrete(rng, *n, *k, 30, 2.5, 1)
		diag, err := nonzero.BuildDiscreteDiagram(pts, nonzero.DiagramOptions{})
		if err != nil {
			fail(err)
		}
		view := boxAround(diag)
		c := svg.New(view, *px)
		drawArrangement(c, diag, view)
		for i, p := range pts {
			for _, l := range p.Locs {
				c.Dot(l, 3, svg.Palette(i))
			}
		}
		if _, err := c.WriteTo(w); err != nil {
			fail(err)
		}
	case "vpr":
		pts := constructions.RandomDiscrete(rng, *n, *k, 20, 2, 1)
		v, err := quantify.BuildVPr(pts, quantify.VPrOptions{})
		if err != nil {
			fail(err)
		}
		bb := geom.EmptyRect()
		for _, p := range pts {
			bb = bb.Union(p.Support())
		}
		view := bb.Inflate(bb.Diag() / 2)
		c := svg.New(view, *px)
		for _, e := range v.Arr.Edges {
			if s, ok := v.Arr.Seg(e).ClipToRect(view); ok {
				c.Line(s, "#999", 0.6)
			}
		}
		for i, p := range pts {
			for _, l := range p.Locs {
				c.Dot(l, 3.5, svg.Palette(i))
			}
		}
		if _, err := c.WriteTo(w); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown -kind %q", *kind))
	}
}

func renderDisks(w *os.File, disks []geom.Disk, px float64) {
	diag, err := nonzero.BuildDiskDiagram(disks, nonzero.DiagramOptions{})
	if err != nil {
		fail(err)
	}
	view := boxAround(diag)
	c := svg.New(view, px)
	drawArrangement(c, diag, view)
	for i, d := range disks {
		c.Circle(d, svg.Palette(i), "", 1.4)
		c.Dot(d.C, 2, svg.Palette(i))
	}
	if _, err := c.WriteTo(w); err != nil {
		fail(err)
	}
}

func boxAround(diag *nonzero.Diagram) geom.Rect {
	// Use the data region plus a modest margin rather than the full
	// working box, which is mostly empty.
	b := diag.Box
	shrink := b.Width() * 0.35
	return geom.Rect{
		Min: geom.Pt(b.Min.X+shrink, b.Min.Y+shrink),
		Max: geom.Pt(b.Max.X-shrink, b.Max.Y-shrink),
	}
}

func drawArrangement(c *svg.Canvas, diag *nonzero.Diagram, view geom.Rect) {
	for _, e := range diag.Arr.Edges {
		if s, ok := diag.Arr.Seg(e).ClipToRect(view); ok {
			c.Line(s, svg.Palette(e.Curve), 1)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "unnviz: %v\n", err)
	os.Exit(1)
}
